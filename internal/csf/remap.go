package csf

import "fmt"

// RemapFids returns a view of the tree with the fiber ids of selected
// levels rewritten through per-level bijections: fwd[l], when non-nil,
// maps every original mode index at level l to its remapped index
// (fwd[l][old] = new). Levels with a nil entry share the base tree's
// fiber-id storage unchanged; remapped levels get a fresh id column.
//
// Only the ids change — node order, pointer structure, values, dims and
// perm are shared with the base, so a partition computed for the base
// clamps the view identically and a kernel walk visits nodes (and sums
// contributions) in exactly the same order. This is what makes a
// factor-row remap bit-identity-preserving: the view relabels which
// factor row a node reads or writes, never when.
//
// The view shares the base's backing without owning it: Close on the
// view delegates to the base, and the view reports Closed as soon as the
// base does (see Tree.Closed).
//
// idx: return dim
// life: return view
func (t *Tree) RemapFids(fwd [][]int32) *Tree {
	d := t.Order()
	if len(fwd) != d {
		panic(fmt.Sprintf("csf: RemapFids with %d level maps on an order-%d tree", len(fwd), d))
	}
	view := &Tree{
		dims:    t.dims,
		perm:    t.perm,
		fids:    make([][]int32, d),
		ptr:     t.ptr,
		vals:    t.vals,
		backing: t.backing,
		base:    t,
	}
	for l := 0; l < d; l++ {
		m := fwd[l]
		if m == nil {
			view.fids[l] = t.fids[l]
			continue
		}
		if len(m) != t.dims[l] {
			panic(fmt.Sprintf("csf: RemapFids level %d map covers %d ids, dim is %d", l, len(m), t.dims[l]))
		}
		src := t.fids[l]
		dst := make([]int32, len(src))
		for n, f := range src {
			// Stored fiber ids are in [0, dim) by Validate's invariant.
			dst[n] = m[f]
		}
		view.fids[l] = dst
	}
	return view
}

package csf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"stef/internal/tensor"
)

// TestCountSwappedFibersProperty is the Algorithm 9 correctness property on
// randomized tensors: for any tensor, mode permutation, and thread count,
// the O(nnz) counting pass must equal the level-(d-2) fiber count of the
// actually materialized last-two-modes-swapped CSF.
func TestCountSwappedFibersProperty(t *testing.T) {
	f := func(seed int64, d8, nnz16, t8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 3 + int(d8)%3 // order 3..5
		dims := make([]int, d)
		for i := range dims {
			dims[i] = 1 + rng.Intn(14)
		}
		space := 1
		for _, n := range dims {
			space *= n
		}
		nnz := 1 + int(nnz16)%minInt(200, space)
		tt := tensor.Random(dims, nnz, nil, seed)
		tree := Build(tt, rng.Perm(d))
		if tree.Validate() != nil {
			return false
		}
		swapped := Build(tt, tree.SwappedPerm())
		if swapped.Validate() != nil {
			return false
		}
		threads := 1 + int(t8)%8
		want := int64(swapped.NumFibers(d - 2))
		if tree.CountSwappedFibers(threads) != want {
			return false
		}
		// SwappedFiberCounts must agree with the materialized tree at every
		// level: the prefix levels are untouched by the swap, level d-2 is
		// the counted quantity, and the leaf level is nnz either way.
		sc := tree.SwappedFiberCounts(threads)
		fc := swapped.FiberCounts()
		for l := 0; l < d; l++ {
			if sc[l] != fc[l] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestCountSwappedFibersDegenerateLastMode pins the edge the stamp array
// depends on: a last-mode dimension of 1 collapses every swapped fiber onto
// one leaf index, so the count must equal the number of level-(d-3)
// children, however many leaves each holds.
func TestCountSwappedFibersDegenerateLastMode(t *testing.T) {
	tt := testTensor(t, []int{5, 6, 1}, 25, 21)
	tree := Build(tt, []int{0, 1, 2})
	swapped := Build(tt, tree.SwappedPerm())
	want := int64(swapped.NumFibers(tree.Order() - 2))
	for _, threads := range []int{1, 3} {
		if got := tree.CountSwappedFibers(threads); got != want {
			t.Errorf("T=%d: swapped fibers %d, want %d", threads, got, want)
		}
	}
}

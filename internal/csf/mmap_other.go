//go:build !linux

package csf

import (
	"io"
	"os"
)

// Portable arena fallback: platforms without the linux mmap path read each
// section into heap slices through the same geometry validation and
// bounded-chunk readSlice the CSF1 stream uses. Opening costs O(nnz) like
// ReadFrom, but the file format, the resulting Tree, and the Backing/Close
// lifecycle are identical to the zero-copy path, so callers are portable.

// heapBacking marks a tree whose arena sections were copied to the heap;
// the GC owns the storage, so Close has nothing to release.
type heapBacking struct{}

func (heapBacking) Kind() string { return "arena-heap" }
func (heapBacking) Close() error { return nil }

// heapLoader reads section payloads out of the file at their validated
// offsets.
type heapLoader struct{ f *os.File }

func (h heapLoader) int32s(sec arenaSection) ([]int32, error) {
	return readSectionAt[int32](h.f, sec)
}
func (h heapLoader) int64s(sec arenaSection) ([]int64, error) {
	return readSectionAt[int64](h.f, sec)
}
func (h heapLoader) float64s(sec arenaSection) ([]float64, error) {
	return readSectionAt[float64](h.f, sec)
}

func readSectionAt[T int32 | int64 | float64](f *os.File, sec arenaSection) ([]T, error) {
	if sec.count == 0 {
		return nil, nil
	}
	var elem T
	r := io.NewSectionReader(f, sec.off, sec.count*sizeOf(elem))
	return readSlice[T](r, sec.count)
}

// sizeOf returns the byte width of an arena element type.
//
// idx: return rank // 4 or 8
func sizeOf[T int32 | int64 | float64](T) int64 {
	var v T
	switch any(v).(type) {
	case int32:
		return 4
	default:
		return 8
	}
}

// openArenaPlatform opens path by copying its sections to the heap.
func openArenaPlatform(path string) (*Tree, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, _, err := readArenaGeometry(f)
	if err != nil {
		return nil, err
	}
	t, err := treeFromArena(g, heapLoader{f: f})
	if err != nil {
		return nil, err
	}
	t.backing = heapBacking{}
	return t, nil
}

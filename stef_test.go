package stef_test

import (
	"math"
	"path/filepath"
	"testing"

	"stef"
	"stef/internal/frostt"
	"stef/internal/tensor"
)

func TestDecomposeDefaultEngine(t *testing.T) {
	tt := tensor.Random([]int{12, 15, 18}, 800, nil, 4)
	res, err := stef.Decompose(tt, stef.Options{Rank: 4, MaxIters: 6, Tol: -1, Threads: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != 6 {
		t.Fatalf("ran %d iterations, want 6", res.Iters)
	}
	if math.IsNaN(res.FinalFit()) || res.FinalFit() <= 0 {
		t.Fatalf("bad final fit %g", res.FinalFit())
	}
	for m, f := range res.Factors {
		if f.Rows != tt.Dims[m] || f.Cols != 4 {
			t.Fatalf("factor %d shape %dx%d", m, f.Rows, f.Cols)
		}
	}
}

func TestDecomposeEveryEngineName(t *testing.T) {
	tt := tensor.Random([]int{8, 10, 12}, 400, nil, 2)
	for _, name := range []string{"", "stef", "stef2", "splatt-1", "splatt-2", "splatt-all", "adatm", "alto", "taco", "hicoo", "dtree", "naive"} {
		res, err := stef.Decompose(tt, stef.Options{Rank: 3, MaxIters: 3, Tol: -1, Engine: name, Threads: 2})
		if err != nil {
			t.Fatalf("engine %q: %v", name, err)
		}
		if len(res.Fits) != 3 {
			t.Fatalf("engine %q: %d fits", name, len(res.Fits))
		}
	}
	if _, err := stef.Decompose(tt, stef.Options{Engine: "bogus"}); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

// TestDecomposeWithReorder verifies that reordering is transparent: the
// returned factors live in the original index space and the fit matches a
// plain run to within ALS-trajectory noise.
func TestDecomposeWithReorder(t *testing.T) {
	tt := tensor.Random([]int{10, 12, 14}, 700, []float64{1.5, 0, 0}, 6)
	plain, err := stef.Decompose(tt, stef.Options{Rank: 4, MaxIters: 8, Tol: -1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"lexi", "bfsmcs"} {
		re, err := stef.Decompose(tt, stef.Options{Rank: 4, MaxIters: 8, Tol: -1, Seed: 5, Reorder: mode})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if math.Abs(re.FinalFit()-plain.FinalFit()) > 0.05 {
			t.Errorf("%s: fit %.4f vs plain %.4f", mode, re.FinalFit(), plain.FinalFit())
		}
		for m, f := range re.Factors {
			if f.Rows != tt.Dims[m] {
				t.Fatalf("%s: factor %d has %d rows, want %d", mode, m, f.Rows, tt.Dims[m])
			}
		}
	}
	if _, err := stef.Decompose(tt, stef.Options{Reorder: "bogus"}); err == nil {
		t.Fatal("unknown reordering accepted")
	}
}

func TestPlanFacade(t *testing.T) {
	tt := tensor.Random([]int{6, 30, 50}, 900, nil, 3)
	plan, err := stef.Plan(tt, stef.Options{Rank: 8, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Tree == nil || len(plan.Config.Save) != 3 {
		t.Fatal("incomplete plan")
	}
}

func TestDecomposeBest(t *testing.T) {
	tt := tensor.Random([]int{10, 12, 14}, 500, nil, 8)
	single, err := stef.Decompose(tt, stef.Options{Rank: 3, MaxIters: 6, Tol: -1, Seed: 20})
	if err != nil {
		t.Fatal(err)
	}
	best, err := stef.DecomposeBest(tt, stef.Options{Rank: 3, MaxIters: 6, Tol: -1, Seed: 20}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if best.FinalFit() < single.FinalFit()-1e-12 {
		t.Fatalf("best-of-3 fit %.6f below single-run fit %.6f", best.FinalFit(), single.FinalFit())
	}
	if _, err := stef.DecomposeBest(tt, stef.Options{Rank: 2, MaxIters: 1, Tol: -1}, 0); err != nil {
		t.Fatalf("restarts=0 should clamp to 1: %v", err)
	}
}

func TestLoadTensorAndBenchmark(t *testing.T) {
	tt, err := stef.Benchmark("uber")
	if err != nil {
		t.Fatal(err)
	}
	if tt.Order() != 4 {
		t.Fatalf("uber order %d", tt.Order())
	}
	path := filepath.Join(t.TempDir(), "x.tns")
	if err := frostt.WriteFile(path, tt); err != nil {
		t.Fatal(err)
	}
	back, err := stef.LoadTensor(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != tt.NNZ() {
		t.Fatalf("round trip nnz %d, want %d", back.NNZ(), tt.NNZ())
	}
	if _, err := stef.Benchmark("bogus"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

module stef

go 1.22

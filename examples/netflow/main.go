// Netflow: the paper's motivating pathological case for slice-based
// parallelism. The vast-2015-mc1 tensors have a mode of length 2 that ends
// up as the CSF root under length-sorted ordering, so any scheme that
// assigns root slices to threads can use at most 2 threads — and the two
// slices are heavily skewed on top of that (the paper reports a 1674% load
// imbalance). This example builds the 5-way variant, prints both partition
// schemes' per-thread loads, and times one CPD iteration with slice-based
// versus non-zero-balanced scheduling.
//
//	go run ./examples/netflow
package main

import (
	"fmt"
	"log"

	"stef"
	"stef/internal/core"
	"stef/internal/csf"
	"stef/internal/experiments"
	"stef/internal/sched"
)

func main() {
	t, err := stef.Benchmark("vast-2015-mc1-5d")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network-log tensor: %v\n", t)

	const threads = 8
	tree := csf.Build(t, nil)
	fmt.Printf("CSF root mode has %d slices for %d threads\n", tree.NumFibers(0), threads)

	sp := sched.NewSlicePartitionNNZ(tree, threads)
	fmt.Printf("slice-partition thread loads:    %v  (imbalance %.0f%%)\n",
		sp.SliceLoads(tree), sched.ImbalancePct(sp.SliceLoads(tree)))
	bp := sched.NewPartition(tree, threads)
	fmt.Printf("balanced-partition thread loads: %v  (imbalance %.0f%%)\n",
		bp.Loads(), sched.ImbalancePct(bp.Loads()))

	// Time one MTTKRP iteration under both schedulers.
	for _, cfg := range []struct {
		label string
		slice bool
	}{
		{"slice-based (prior work)", true},
		{"nnz-balanced (STeF)", false},
	} {
		eng, _, err := core.NewEngineFor(t, core.Options{Rank: 32, Threads: threads, SliceSched: cfg.slice})
		if err != nil {
			log.Fatal(err)
		}
		el := experiments.TimeIteration(eng, t.Dims, 32, 3)
		fmt.Printf("%-26s one MTTKRP iteration: %v\n", cfg.label, el)
	}

	// Makespan model at the paper's machine scale, where the effect is
	// dramatic regardless of this host's core count.
	for _, engine := range []string{"splatt-all", "stef"} {
		ms, err := experiments.ModeledMakespan(engine, t, 18, 32, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("modeled makespan at T=18, %-11s %d work units\n", engine+":", ms)
	}
}

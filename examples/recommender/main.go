// Recommender: factorise a user × item × time-of-week rating tensor (the
// workload class that motivates CPD in the paper's introduction) and use
// the factors to produce top-k item recommendations for a user.
//
// The tensor is synthetic but structured: a hidden rank-5 model with user
// communities, item genres and weekly rhythm generates observed entries, so
// the decomposition has real structure to recover — the final fit shows how
// much of it CPD found.
//
//	go run ./examples/recommender
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"stef"
	"stef/internal/tensor"
)

const (
	users  = 400
	items  = 300
	slots  = 24 // hour-of-day
	rank   = 8
	hidden = 5
	nnz    = 120_000 // ~4% density: enough signal for CPD to recover
)

func main() {
	t, userOf, itemOf, slotOf := synthesizeRatings()
	fmt.Printf("ratings tensor: %v\n", t)

	res, err := stef.Decompose(t, stef.Options{
		Rank:     rank,
		MaxIters: 25,
		Threads:  4,
		Engine:   "stef2",
		Seed:     3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fit %.4f after %d iterations (engine stef2)\n", res.FinalFit(), res.Iters)

	// Score items for one user at one time slot from the factors:
	// score(u, i, s) = Σ_r λ_r · U[u,r] · I[i,r] · S[s,r].
	// Pick a user and an hour from hidden component 0, so we know the
	// ground truth: the top items should come from genre 0.
	u, slot := int(userOf[0][0]), int(slotOf[0][0])
	type scored struct {
		item  int
		score float64
	}
	var ranked []scored
	for i := 0; i < items; i++ {
		s := 0.0
		for r := 0; r < rank; r++ {
			s += res.Lambda[r] * res.Factors[0].At(u, r) * res.Factors[1].At(i, r) * res.Factors[2].At(slot, r)
		}
		ranked = append(ranked, scored{i, s})
	}
	sort.Slice(ranked, func(a, b int) bool { return ranked[a].score > ranked[b].score })
	inGenre0 := map[int]bool{}
	for _, i := range itemOf[0] {
		inGenre0[int(i)] = true
	}
	fmt.Printf("top recommendations for user %d (community 0) at hour %d:\n", u, slot)
	hits := 0
	for k := 0; k < 10; k++ {
		mark := " "
		if inGenre0[ranked[k].item] {
			mark = "*"
			hits++
		}
		fmt.Printf("  item %4d  score %.4f %s\n", ranked[k].item, ranked[k].score, mark)
	}
	fmt.Printf("%d/10 top items are from the user's true genre (* = ground-truth match)\n", hits)
}

// synthesizeRatings builds an implicit-feedback log with genuine low-rank
// structure: each hidden component is a (user community × item genre ×
// active hours) block, and observed entries are drawn from those blocks
// with rating noise, plus a sliver of background noise. The union of such
// blocks is well approximated by a rank-`hidden` CP model, so the
// decomposition has real structure to recover.
func synthesizeRatings() (*tensor.Tensor, [][]int32, [][]int32, [][]int32) {
	rng := rand.New(rand.NewSource(99))
	userOf := membership(rng, users)
	itemOf := membership(rng, items)
	slotOf := membership(rng, slots)

	t := tensor.New([]int{users, items, slots}, nnz)
	seen := map[[3]int32]bool{}
	for len(t.Vals) < nnz {
		var c [3]int32
		var v float64
		if rng.Float64() < 0.05 {
			// Background noise: uniform random interaction.
			c = [3]int32{int32(rng.Intn(users)), int32(rng.Intn(items)), int32(rng.Intn(slots))}
			v = 0.2 * rng.Float64()
		} else {
			h := rng.Intn(hidden)
			c = [3]int32{pick(rng, userOf[h]), pick(rng, itemOf[h]), pick(rng, slotOf[h])}
			v = 1 + 0.1*rng.NormFloat64()
		}
		if seen[c] {
			continue
		}
		seen[c] = true
		t.Append(c[:], v)
	}
	t.SortLex()
	return t, userOf, itemOf, slotOf
}

// membership assigns each of n entities to one of the hidden components
// and returns the member list per component.
func membership(rng *rand.Rand, n int) [][]int32 {
	lists := make([][]int32, hidden)
	for i := 0; i < n; i++ {
		h := rng.Intn(hidden)
		lists[h] = append(lists[h], int32(i))
	}
	for h := range lists {
		if len(lists[h]) == 0 { // guard tiny modes
			lists[h] = append(lists[h], int32(rng.Intn(n)))
		}
	}
	return lists
}

func pick(rng *rand.Rand, xs []int32) int32 { return xs[rng.Intn(len(xs))] }

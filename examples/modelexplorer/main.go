// Modelexplorer: sweep STeF's data-movement model over every configuration
// (memoization subset × last-two-mode layout) for a tensor, then measure
// each configuration's actual MTTKRP time and report predicted-vs-measured
// ranking — a direct check of Section IV's model quality on this host.
//
//	go run ./examples/modelexplorer [tensor-name]
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"stef"
	"stef/internal/core"
	"stef/internal/experiments"
	"stef/internal/stats"
)

func main() {
	name := "uber"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	t, err := stef.Benchmark(name)
	if err != nil {
		log.Fatal(err)
	}
	const (
		rank    = 32
		threads = 4
	)
	fmt.Printf("exploring configurations for %s: %v\n", name, t)

	plan, err := core.NewPlan(t, core.Options{Rank: rank, Threads: threads})
	if err != nil {
		log.Fatal(err)
	}

	type entry struct {
		swap     bool
		save     []bool
		cost     int64
		measured float64 // seconds
	}
	var entries []entry
	for _, cfg := range plan.AllConfigs {
		// Force this exact configuration through the ablation rules.
		opts := core.Options{Rank: rank, Threads: threads}
		if cfg.Swap {
			opts.SwapRule = core.SwapAlways
		} else {
			opts.SwapRule = core.SwapNever
		}
		opts.SaveRule = core.SaveNone
		variant, err := core.NewPlan(t, opts)
		if err != nil {
			log.Fatal(err)
		}
		variant.Config.Save = cfg.Save
		eng := core.NewEngine(variant)
		el := experiments.TimeIteration(eng, t.Dims, rank, 3)
		entries = append(entries, entry{cfg.Swap, cfg.Save, cfg.Cost.Total(), el.Seconds()})
	}

	sort.Slice(entries, func(a, b int) bool { return entries[a].cost < entries[b].cost })
	tab := stats.NewTable("rank-by-model", "swap", "save", "modeled-cost", "measured-ms")
	for i, e := range entries {
		tab.AddRow(i+1, fmt.Sprint(e.swap), fmt.Sprint(e.save), e.cost, fmt.Sprintf("%.2f", e.measured*1000))
	}
	tab.Render(os.Stdout)

	bestMeasured := 0
	for i, e := range entries {
		if e.measured < entries[bestMeasured].measured {
			bestMeasured = i
		}
	}
	fmt.Printf("\nmodel's pick is ranked #1; fastest measured configuration is model rank #%d\n", bestMeasured+1)
	fmt.Printf("model-chosen config runs within %.1f%% of the fastest\n",
		100*entries[0].measured/entries[bestMeasured].measured-100)
}

// Enginecompare runs every MTTKRP engine in the repository — the paper's
// comparison set plus the HiCOO and dimension-tree extensions — on one
// benchmark tensor, reporting per-iteration MTTKRP time, the per-mode
// breakdown, and final fit for a short CPD run.
//
//	go run ./examples/enginecompare [tensor-name]
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"stef"
	"stef/internal/stats"
)

func main() {
	name := "uber"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	t, err := stef.Benchmark(name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("comparing engines on %s: %v\n\n", name, t)

	const (
		rank    = 16
		iters   = 5
		threads = 4
	)
	engines := []string{
		"splatt-1", "splatt-2", "splatt-all", "adatm", "alto", "taco",
		"hicoo", "dtree", "stef", "stef2",
	}
	header := []string{"engine", "fit", "MTTKRP/iter"}
	for m := 0; m < t.Order(); m++ {
		header = append(header, fmt.Sprintf("mode%d%%", m))
	}
	tab := stats.NewTable(header...)
	for _, en := range engines {
		res, err := stef.Decompose(t, stef.Options{
			Rank: rank, MaxIters: iters, Tol: -1, Threads: threads, Engine: en, Seed: 7,
		})
		if err != nil {
			log.Fatalf("%s: %v", en, err)
		}
		cells := []interface{}{
			en,
			fmt.Sprintf("%.4f", res.FinalFit()),
			(res.MTTKRPTime / time.Duration(max(1, res.Iters))).Round(10 * time.Microsecond).String(),
		}
		for m := 0; m < t.Order(); m++ {
			cells = append(cells, fmt.Sprintf("%.0f", 100*float64(res.ModeTime[m])/float64(res.MTTKRPTime)))
		}
		tab.AddRow(cells...)
	}
	tab.Render(os.Stdout)
	fmt.Println("\nmode% columns show where each engine spends its MTTKRP time;")
	fmt.Println("note how stef2 flattens the most expensive (leaf) mode relative to stef.")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

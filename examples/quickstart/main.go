// Quickstart: decompose a small synthetic 3-way tensor with STeF and print
// the fit per iteration, then inspect the plan STeF chose for it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"stef"
	"stef/internal/tensor"
)

func main() {
	// A 200x300x400 tensor with 50k non-zeros, mildly skewed on mode 0.
	t := tensor.Random([]int{200, 300, 400}, 50_000, []float64{1.3, 0, 0}, 1)
	fmt.Printf("input: %v\n", t)

	res, err := stef.Decompose(t, stef.Options{
		Rank:     16,
		MaxIters: 15,
		Threads:  4,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, fit := range res.Fits {
		fmt.Printf("iter %2d  fit %.5f\n", i+1, fit)
	}
	fmt.Printf("converged=%v after %d iterations; MTTKRP time %v\n",
		res.Converged, res.Iters, res.MTTKRPTime.Round(1000))

	// What did the planner decide?
	plan, err := stef.Plan(t, stef.Options{Rank: 16, Threads: 4})
	if err != nil {
		log.Fatal(err)
	}
	plan.Describe(os.Stdout)
}

package stef

// This file maps every table and figure of the paper's evaluation section
// to a Go benchmark, as indexed in DESIGN.md §4:
//
//	BenchmarkTableI    — benchmark-suite generation + CSF construction
//	BenchmarkFig3      — per-engine MTTKRP iteration time, R=32/64 (host)
//	BenchmarkFig4      — modeled-makespan evaluation at T=64
//	BenchmarkFig5      — preprocessing (Alg. 9 + model search)
//	BenchmarkTableII   — planning + memo-storage accounting
//	BenchmarkFig6      — ablation variants of STeF
//	BenchmarkKernels   — micro-benchmarks of the individual MTTKRP kernels
//
// The benchmarks use a reduced tensor subset (and -short further reduces
// nnz) so `go test -bench=. -benchmem` completes on a laptop; run
// cmd/stef-bench for the full-suite tables.

import (
	"fmt"
	"testing"

	"stef/internal/core"
	"stef/internal/csf"
	"stef/internal/experiments"
	"stef/internal/kernels"
	"stef/internal/sched"
	"stef/internal/tensor"
)

// benchTensors is the representative subset used by the timing benchmarks:
// one small dense-ish 4D tensor, the pathological 2-root-slice tensor, and
// one hypersparse 3D tensor.
var benchTensors = []string{"uber", "vast-2015-mc1-3d", "nell-2"}

func benchTensor(b *testing.B, name string) *tensor.Tensor {
	b.Helper()
	p, err := tensor.ProfileByName(name)
	if err != nil {
		b.Fatal(err)
	}
	if testing.Short() {
		p.NNZ /= 10
	}
	return p.Generate()
}

func BenchmarkTableI(b *testing.B) {
	for _, name := range benchTensors {
		b.Run(name, func(b *testing.B) {
			p, err := tensor.ProfileByName(name)
			if err != nil {
				b.Fatal(err)
			}
			if testing.Short() {
				p.NNZ /= 10
			}
			for i := 0; i < b.N; i++ {
				tt := p.Generate()
				tr := csf.Build(tt, nil)
				if tr.NNZ() != tt.NNZ() {
					b.Fatal("nnz mismatch")
				}
			}
		})
	}
}

func benchFig3(b *testing.B, rank int) {
	for _, name := range benchTensors {
		tt := benchTensor(b, name)
		for _, spec := range experiments.AllEngines() {
			b.Run(fmt.Sprintf("%s/%s", name, spec.Name), func(b *testing.B) {
				eng, err := spec.Build(tt, 4, rank, 0)
				if err != nil {
					b.Fatal(err)
				}
				factors := tensor.RandomFactors(tt.Dims, rank, 7)
				d := tt.Order()
				order := eng.UpdateOrder()
				outs := make([]*tensor.Matrix, d)
				for pos := 0; pos < d; pos++ {
					outs[pos] = tensor.NewMatrix(tt.Dims[order[pos]], rank)
				}
				ws := eng.NewWorkspace()
				ws.Reset()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for pos := 0; pos < d; pos++ {
						eng.Compute(ws, pos, factors, outs[pos])
					}
				}
			})
		}
	}
}

func BenchmarkFig3_R32(b *testing.B) { benchFig3(b, 32) }
func BenchmarkFig3_R64(b *testing.B) { benchFig3(b, 64) }

func BenchmarkFig4_ModeledT64(b *testing.B) {
	for _, name := range benchTensors {
		tt := benchTensor(b, name)
		for _, engine := range []string{"splatt-all", "stef", "stef2"} {
			b.Run(fmt.Sprintf("%s/%s", name, engine), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := experiments.ModeledMakespan(engine, tt, 64, 32, 0); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkFig5_Preprocessing(b *testing.B) {
	for _, name := range benchTensors {
		tt := benchTensor(b, name)
		tree := csf.Build(tt, nil)
		b.Run(name+"/alg9", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if tree.CountSwappedFibers(4) == 0 {
					b.Fatal("zero fibers")
				}
			}
		})
		b.Run(name+"/fullplan", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.NewPlan(tt, core.Options{Rank: 32, Threads: 4}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTableII_Accounting(b *testing.B) {
	for _, rank := range []int{32, 64} {
		b.Run(fmt.Sprintf("R%d", rank), func(b *testing.B) {
			tt := benchTensor(b, "uber")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				plan, err := core.NewPlan(tt, core.Options{Rank: rank})
				if err != nil {
					b.Fatal(err)
				}
				_ = plan.Ratio()
			}
		})
	}
}

func BenchmarkFig6_Ablations(b *testing.B) {
	tt := benchTensor(b, "vast-2015-mc1-3d")
	variants := []struct {
		name string
		opts core.Options
	}{
		{"model-chosen", core.Options{}},
		{"slice-sched", core.Options{SliceSched: true}},
		{"save-all", core.Options{SaveRule: core.SaveAll}},
		{"save-none", core.Options{SaveRule: core.SaveNone}},
		{"swap-opposite", core.Options{SwapRule: core.SwapOpposite}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			o := v.opts
			o.Rank, o.Threads = 32, 4
			eng, _, err := core.NewEngineFor(tt, o)
			if err != nil {
				b.Fatal(err)
			}
			factors := tensor.RandomFactors(tt.Dims, 32, 7)
			d := tt.Order()
			order := eng.UpdateOrder()
			outs := make([]*tensor.Matrix, d)
			for pos := 0; pos < d; pos++ {
				outs[pos] = tensor.NewMatrix(tt.Dims[order[pos]], 32)
			}
			ws := eng.NewWorkspace()
			ws.Reset()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for pos := 0; pos < d; pos++ {
					eng.Compute(ws, pos, factors, outs[pos])
				}
			}
		})
	}
}

// Micro-benchmarks of the individual kernels.

func BenchmarkKernels(b *testing.B) {
	tt := benchTensor(b, "nell-2")
	tree := csf.Build(tt, nil)
	const rank = 32
	factors := tensor.RandomFactors(tt.Dims, rank, 1)
	lf := kernels.LevelFactors(factors, tree.Perm())
	part := sched.NewPartition(tree, 4)
	d := tree.Order()

	saveAll := make([]bool, d)
	for l := 1; l <= d-2; l++ {
		saveAll[l] = true
	}
	memo := kernels.NewPartials(tree, rank, saveAll)
	noMemo := kernels.NoPartials(d)
	out0 := tensor.NewMatrix(tree.Dim(0), rank)

	b.Run("root/no-memo", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kernels.RootMTTKRP(tree, lf, out0, noMemo, part)
		}
	})
	b.Run("root/memo-all", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kernels.RootMTTKRP(tree, lf, out0, memo, part)
		}
	})
	kernels.RootMTTKRP(tree, lf, out0, memo, part)
	for u := 1; u < d; u++ {
		buf := kernels.NewOutBuf(tree.Dim(u), rank, 4, 0)
		b.Run(fmt.Sprintf("mode%d/memoized", u), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				buf.Reset()
				kernels.ModeMTTKRP(tree, lf, u, memo, buf, part)
			}
		})
		b.Run(fmt.Sprintf("mode%d/recompute", u), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				buf.Reset()
				kernels.ModeMTTKRP(tree, lf, u, noMemo, buf, part)
			}
		})
	}
	b.Run("alg9-count", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tree.CountSwappedFibers(4)
		}
	})
	b.Run("csf-build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			csf.Build(tt, nil)
		}
	})
	b.Run("partition", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sched.NewPartition(tree, 16)
		}
	})
}
